package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ldiv/internal/loadgen"
)

func TestParseOptions(t *testing.T) {
	tests := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{name: "defaults", args: nil},
		{name: "named scenario", args: []string{"-scenario", "sustained"}},
		{name: "unknown scenario", args: []string{"-scenario", "nope"}, wantErr: "unknown scenario"},
		{name: "unknown scenario fine with list", args: []string{"-scenario", "nope", "-list"}},
		{name: "matrix ignores scenario", args: []string{"-scenario", "nope", "-matrix"}},
		{name: "compare pair", args: []string{"-compare", "a.json", "-against", "b.json"}},
		{name: "compare without against", args: []string{"-compare", "a.json"}, wantErr: "-against"},
		{name: "against without compare", args: []string{"-against", "b.json"}, wantErr: "-compare"},
		{name: "degrade without out", args: []string{"-degrade", "a.json"}, wantErr: "-o"},
		{name: "degrade ok", args: []string{"-degrade", "a.json", "-o", "b.json"}},
		{name: "degrade factor too small", args: []string{"-degrade", "a.json", "-o", "b.json", "-factor", "1"}, wantErr: "-factor"},
		{name: "negative tolerance", args: []string{"-compare", "a.json", "-against", "b.json", "-max-p99-regress", "-5"}, wantErr: "tolerances"},
		{name: "negative override", args: []string{"-rows", "-1"}, wantErr: "non-negative"},
		{name: "negative queue", args: []string{"-queue", "-2"}, wantErr: "-queue"},
		{name: "matrix with shared store dir", args: []string{"-matrix", "-store-dir", "/tmp/x"}, wantErr: "-store-dir"},
		{name: "overrides", args: []string{"-duration", "1s", "-rows", "100", "-l", "2", "-tenants", "3", "-rate", "50"}},
		{name: "corpus scenario", args: []string{"-scenario", "corpus-heavytail"}},
		{name: "dataset override", args: []string{"-dataset", "near-duplicate"}},
		{name: "dataset override normalized", args: []string{"-dataset", "CORR-SA"}},
		{name: "unknown dataset", args: []string{"-dataset", "census"}, wantErr: "unknown dataset family"},
		{name: "bad flag", args: []string{"-no-such-flag"}, wantErr: "flag parse error"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := parseOptions(tc.args)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("parseOptions(%v) = %v, want nil", tc.args, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("parseOptions(%v) = %v, want error containing %q", tc.args, err, tc.wantErr)
			}
		})
	}
}

func TestApplyOverrides(t *testing.T) {
	base, _ := loadgen.NamedScenario("smoke")
	opts := options{
		duration: time.Second, rows: 123, l: 2, algo: "mondrian", dataset: "heavytail-sa",
		tenants: 5, concurrency: 3, rate: 9.5, roundTrips: 42,
		bodies: 4, sample: 2, seed: 77,
	}
	sc := applyOverrides(base, opts)
	if sc.Duration != time.Second || sc.Rows != 123 || sc.L != 2 || sc.Algorithm != "mondrian" ||
		sc.Dataset != "heavytail-sa" ||
		sc.Tenants != 5 || sc.Concurrency != 3 || sc.RatePerSec != 9.5 || sc.RoundTrips != 42 ||
		sc.UniqueBodies != 4 || sc.SampleEvery != 2 || sc.Seed != 77 {
		t.Errorf("overrides not applied: %+v", sc)
	}
	// Zero overrides keep the scenario's values.
	same := applyOverrides(base, options{})
	if same != base {
		t.Errorf("zero overrides changed the scenario: %+v != %+v", same, base)
	}
}

// writeBenchFile writes a minimal valid BENCH file for compare-mode tests.
func writeBenchFile(t *testing.T, path string, mutate func(*loadgen.Report)) {
	t.Helper()
	rep := &loadgen.Report{
		SchemaVersion: loadgen.SchemaVersion,
		Scenario:      loadgen.ScenarioInfo{Name: "smoke"},
		LatencyMS:     loadgen.LatencySnapshot{Count: 100, P99: 10, Max: 12},
		Throughput:    loadgen.ThroughputStats{RoundTrips: 100, Succeeded: 100, RPS: 50},
	}
	if mutate != nil {
		mutate(rep)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := loadgen.WriteBench(f, rep); err != nil {
		t.Fatal(err)
	}
}

func TestRunCompare(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	samePath := filepath.Join(dir, "same.json")
	badPath := filepath.Join(dir, "bad.json")
	writeBenchFile(t, oldPath, nil)
	writeBenchFile(t, samePath, nil)
	writeBenchFile(t, badPath, func(r *loadgen.Report) {
		r.LatencyMS.P99 = 40 // 4x the baseline
		r.Throughput.RPS = 12.5
	})

	code, err := runCompare(options{compare: oldPath, against: samePath, maxP99Regress: 25, maxTputRegres: 25})
	if err != nil || code != 0 {
		t.Fatalf("identical compare: code=%d err=%v", code, err)
	}
	code, err = runCompare(options{compare: oldPath, against: badPath, maxP99Regress: 25, maxTputRegres: 25})
	if err != nil || code != 1 {
		t.Fatalf("regressed compare: code=%d err=%v, want 1", code, err)
	}
	// The same regression passes inside a loose tolerance.
	code, err = runCompare(options{compare: oldPath, against: badPath, maxP99Regress: 1000, maxTputRegres: 1000})
	if err != nil || code != 0 {
		t.Fatalf("loose-tolerance compare: code=%d err=%v, want 0", code, err)
	}
	if _, err := runCompare(options{compare: filepath.Join(dir, "missing.json"), against: samePath, maxP99Regress: 25, maxTputRegres: 25}); err == nil {
		t.Fatal("missing baseline did not error")
	}
}

func TestRunDegradeThenCompareFails(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	degPath := filepath.Join(dir, "deg.json")
	writeBenchFile(t, oldPath, nil)
	if err := runDegrade(options{degrade: oldPath, factor: 4, degOut: degPath}); err != nil {
		t.Fatalf("runDegrade: %v", err)
	}
	code, err := runCompare(options{compare: oldPath, against: degPath, maxP99Regress: 25, maxTputRegres: 25})
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatal("the gate passed a 4x synthetic regression — it gates nothing")
	}
}

// TestRunScenarioEndToEnd runs a tiny scenario against the in-process server
// and checks the BENCH file lands on disk with a clean exit code.
func TestRunScenarioEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end run; the loadgen package covers the harness under -short")
	}
	dir := t.TempDir()
	sc, _ := loadgen.NamedScenario("smoke")
	opts := options{outDir: dir, roundTrips: 40, concurrency: 4, rows: 150, l: 2, bodies: 4, sample: 4}
	code, err := runScenario(context.Background(), sc, opts)
	if err != nil {
		t.Fatalf("runScenario: %v", err)
	}
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	rep, err := loadgen.ReadBenchFile(filepath.Join(dir, "BENCH_smoke.json"))
	if err != nil {
		t.Fatalf("reading the produced BENCH file: %v", err)
	}
	if rep.Throughput.RoundTrips != 40 || rep.Errors.LostJobs != 0 {
		t.Errorf("report: %+v", rep)
	}
}

// TestRunScenarioDurableStore covers the Store path: the in-process server
// gets a temp journal dir and the run stays clean.
func TestRunScenarioDurableStore(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end run")
	}
	dir := t.TempDir()
	sc, _ := loadgen.NamedScenario("durable-smoke")
	opts := options{outDir: dir, roundTrips: 20, concurrency: 4, rows: 150, l: 2, bodies: 4, sample: 4}
	code, err := runScenario(context.Background(), sc, opts)
	if err != nil {
		t.Fatalf("runScenario: %v", err)
	}
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	if _, err := os.Stat(filepath.Join(dir, "BENCH_durable-smoke.json")); err != nil {
		t.Fatal(err)
	}
}
