// Command ldivload is the load-test harness for ldivd: it drives concurrent
// submit -> poll -> result -> verify round trips against a server (an
// in-process one by default, a real deployment via -addr), and writes a
// machine-readable BENCH_<scenario>.json report — throughput, latency
// percentiles, the client- and server-side error taxonomy, and sampled
// byte-equivalence verdicts against the library oracle. See internal/loadgen
// for the harness and docs/ARCHITECTURE.md "Load testing" for the schema.
//
// Usage:
//
//	ldivload                                   # run the smoke scenario in-process
//	ldivload -scenario sustained -out bench    # a named scenario
//	ldivload -matrix                           # every algorithm/l/size/tenant/store cell
//	ldivload -addr http://host:8080            # drive a real deployment
//	ldivload -list                             # print the scenario catalog
//	ldivload -compare old.json -against new.json   # regression gate (exit 1 on regressions)
//	ldivload -degrade in.json -factor 4 -o out.json # inject a synthetic regression
//
// Exit status: 0 on success, 1 when the run had correctness failures (lost
// jobs, audit violations, oracle mismatches) or the comparison found
// regressions, 2 on usage errors.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"time"

	"ldiv/internal/dataset"
	"ldiv/internal/loadgen"
	"ldiv/internal/service"
)

// options is the parsed and validated command line of ldivload.
type options struct {
	// run mode
	addr     string
	scenario string
	matrix   bool
	list     bool
	outDir   string

	// scenario overrides (zero = keep the scenario's value)
	duration    time.Duration
	rows        int
	l           int
	algo        string
	dataset     string
	tenants     int
	concurrency int
	rate        float64
	roundTrips  int64
	bodies      int
	sample      int64
	seed        int64

	// in-process server shape
	workers  int
	queue    int
	storeDir string

	// compare mode
	compare       string
	against       string
	maxP99Regress float64
	maxTputRegres float64

	// degrade mode
	degrade string
	factor  float64
	degOut  string
}

// errFlagParse marks errors the ContinueOnError FlagSet has already printed
// (together with the usage text and flag defaults), so main exits without
// repeating them.
var errFlagParse = errors.New("flag parse error")

// parseOptions parses and validates the command line. The returned FlagSet
// lets main print the usage text (including every flag default) when
// validation fails.
func parseOptions(args []string) (options, *flag.FlagSet, error) {
	fs := flag.NewFlagSet("ldivload", flag.ContinueOnError)
	addr := fs.String("addr", "", "base URL of a running ldivd (e.g. http://localhost:8080); empty starts an in-process server")
	scenario := fs.String("scenario", "smoke", "named scenario to run (see -list)")
	matrix := fs.Bool("matrix", false, "run every cell of the algorithm × l × size × tenants × store matrix")
	list := fs.Bool("list", false, "print the scenario catalog and exit")
	outDir := fs.String("out", "bench", "directory BENCH_<scenario>.json files are written to")

	duration := fs.Duration("duration", 0, "override the scenario's submission-phase duration")
	rows := fs.Int("rows", 0, "override the scenario's table row count")
	l := fs.Int("l", 0, "override the scenario's diversity parameter")
	algo := fs.String("algo", "", "override the scenario's algorithm")
	dataSet := fs.String("dataset", "", "override the scenario's corpus family: "+strings.Join(dataset.Families(), ", "))
	tenants := fs.Int("tenants", 0, "override the scenario's tenant count")
	concurrency := fs.Int("concurrency", 0, "override the scenario's worker count / in-flight cap")
	rate := fs.Float64("rate", 0, "override to an open loop at this many submissions per second")
	roundTrips := fs.Int64("round-trips", 0, "stop after exactly this many round trips instead of -duration")
	bodies := fs.Int("bodies", 0, "override the scenario's unique-body pool size")
	sample := fs.Int64("sample", 0, "override the scenario's verify sampling (audit every Nth result)")
	seed := fs.Int64("seed", 0, "override the scenario's table-generation seed")

	workers := fs.Int("workers", 0, "in-process server: concurrent anonymization jobs; 0 means one per CPU")
	queue := fs.Int("queue", service.DefaultQueueDepth, "in-process server: job backlog bound")
	storeDir := fs.String("store-dir", "", "in-process server: durable job-store directory for Store scenarios; empty uses a temp dir")

	compare := fs.String("compare", "", "baseline BENCH file; compares -against to it and exits 1 on regressions")
	against := fs.String("against", "", "new BENCH file for -compare")
	maxP99 := fs.Float64("max-p99-regress", loadgen.DefaultMaxRegressPct, "p99 latency regression tolerance, percent")
	maxTput := fs.Float64("max-tput-regress", loadgen.DefaultMaxRegressPct, "throughput regression tolerance, percent")

	degrade := fs.String("degrade", "", "BENCH file to copy with a synthetic perf regression injected (for gate self-tests)")
	factor := fs.Float64("factor", 4, "degradation factor for -degrade (p99 multiplied, throughput divided)")
	degOut := fs.String("o", "", "output path for -degrade")

	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return options{}, fs, err
		}
		return options{}, fs, fmt.Errorf("%w: %v", errFlagParse, err)
	}
	if *compare != "" && *against == "" {
		return options{}, fs, errors.New("-compare needs -against NEW.json")
	}
	if *against != "" && *compare == "" {
		return options{}, fs, errors.New("-against needs -compare OLD.json")
	}
	if *degrade != "" && *degOut == "" {
		return options{}, fs, errors.New("-degrade needs -o OUT.json")
	}
	if *degrade != "" && *factor <= 1 {
		return options{}, fs, fmt.Errorf("invalid -factor %v: must be > 1 to be a regression", *factor)
	}
	if *maxP99 <= 0 || *maxTput <= 0 {
		return options{}, fs, errors.New("regression tolerances must be positive")
	}
	if *rate < 0 || *rows < 0 || *l < 0 || *tenants < 0 || *concurrency < 0 ||
		*roundTrips < 0 || *bodies < 0 || *sample < 0 || *duration < 0 {
		return options{}, fs, errors.New("scenario overrides must be non-negative")
	}
	if *matrix && *addr == "" && *storeDir != "" {
		return options{}, fs, errors.New("-store-dir conflicts with -matrix: every disk cell would share one journal; let each cell use its own temp dir")
	}
	if *queue < 0 {
		return options{}, fs, fmt.Errorf("invalid -queue %d: must be non-negative", *queue)
	}
	if _, ok := loadgen.NamedScenario(*scenario); !ok && !*matrix && !*list && *compare == "" && *degrade == "" {
		return options{}, fs, fmt.Errorf("unknown scenario %q; -list prints the catalog", *scenario)
	}
	fam := ""
	if *dataSet != "" {
		// Validated at parse time — like -scenario — so a typo fails before
		// the server starts and the body pool generates.
		f, ok := dataset.Lookup(*dataSet)
		if !ok {
			return options{}, fs, fmt.Errorf("unknown dataset family %q (want one of %s)",
				*dataSet, strings.Join(dataset.Families(), ", "))
		}
		fam = f.Name
	}
	return options{
		addr: *addr, scenario: *scenario, matrix: *matrix, list: *list, outDir: *outDir,
		duration: *duration, rows: *rows, l: *l, algo: *algo, dataset: fam, tenants: *tenants,
		concurrency: *concurrency, rate: *rate, roundTrips: *roundTrips,
		bodies: *bodies, sample: *sample, seed: *seed,
		workers: *workers, queue: *queue, storeDir: *storeDir,
		compare: *compare, against: *against, maxP99Regress: *maxP99, maxTputRegres: *maxTput,
		degrade: *degrade, factor: *factor, degOut: *degOut,
	}, fs, nil
}

// applyOverrides folds the override flags into a scenario.
func applyOverrides(sc loadgen.Scenario, opts options) loadgen.Scenario {
	if opts.duration > 0 {
		sc.Duration = opts.duration
	}
	if opts.rows > 0 {
		sc.Rows = opts.rows
	}
	if opts.l > 0 {
		sc.L = opts.l
	}
	if opts.algo != "" {
		sc.Algorithm = opts.algo
	}
	if opts.dataset != "" {
		sc.Dataset = opts.dataset
	}
	if opts.tenants > 0 {
		sc.Tenants = opts.tenants
	}
	if opts.concurrency > 0 {
		sc.Concurrency = opts.concurrency
	}
	if opts.rate > 0 {
		sc.RatePerSec = opts.rate
	}
	if opts.roundTrips > 0 {
		sc.RoundTrips = opts.roundTrips
	}
	if opts.bodies > 0 {
		sc.UniqueBodies = opts.bodies
	}
	if opts.sample > 0 {
		sc.SampleEvery = opts.sample
	}
	if opts.seed != 0 {
		sc.Seed = opts.seed
	}
	return sc
}

// runCompare is the regression gate: exit 1 (regressions found), 0 (pass).
func runCompare(opts options) (int, error) {
	oldRep, err := loadgen.ReadBenchFile(opts.compare)
	if err != nil {
		return 0, err
	}
	newRep, err := loadgen.ReadBenchFile(opts.against)
	if err != nil {
		return 0, err
	}
	regs := loadgen.Compare(oldRep, newRep, loadgen.CompareOptions{
		MaxP99RegressPct:        opts.maxP99Regress,
		MaxThroughputRegressPct: opts.maxTputRegres,
	})
	if len(regs) > 0 {
		log.Printf("FAIL: %s vs %s:", opts.against, opts.compare)
		for _, reg := range regs {
			log.Printf("  - %s", reg)
		}
		return 1, nil
	}
	log.Printf("ok: %s within tolerance of %s (p99 %.3fms vs %.3fms, %.2f rps vs %.2f rps)",
		opts.against, opts.compare,
		newRep.LatencyMS.P99, oldRep.LatencyMS.P99,
		newRep.Throughput.RPS, oldRep.Throughput.RPS)
	return 0, nil
}

// runDegrade copies a BENCH file with a synthetic regression injected.
func runDegrade(opts options) error {
	rep, err := loadgen.ReadBenchFile(opts.degrade)
	if err != nil {
		return err
	}
	bad := loadgen.Degrade(rep, opts.factor)
	f, err := os.Create(opts.degOut)
	if err != nil {
		return err
	}
	if err := loadgen.WriteBench(f, bad); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	log.Printf("wrote %s: %s degraded %gx", opts.degOut, opts.degrade, opts.factor)
	return nil
}

// serverFor returns the base URL the scenario should run against, starting an
// in-process server when -addr is empty, plus a cleanup function.
func serverFor(sc loadgen.Scenario, opts options) (string, func(), error) {
	if opts.addr != "" {
		return opts.addr, func() {}, nil
	}
	queueDepth := opts.queue
	if queueDepth == 0 {
		queueDepth = -1 // the CLI's 0 means "no backlog", Config's 0 means default
	}
	cfg := service.Config{
		Workers:    opts.workers,
		QueueDepth: queueDepth,
		// Retain every finished job: the harness polls each accepted job to a
		// terminal state, and an eviction 404 would masquerade as a lost job.
		JobRetention: -1,
	}
	cleanupDir := func() {}
	if sc.Store {
		dir := opts.storeDir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "ldivload-store-*")
			if err != nil {
				return "", nil, err
			}
			dir = tmp
			cleanupDir = func() { os.RemoveAll(tmp) }
		}
		cfg.StoreDir = dir
	}
	svc, err := service.Open(cfg)
	if err != nil {
		cleanupDir()
		return "", nil, fmt.Errorf("starting the in-process server: %w", err)
	}
	ts := httptest.NewServer(svc.Handler())
	cleanup := func() {
		ts.Close()
		svc.Close()
		cleanupDir()
	}
	return ts.URL, cleanup, nil
}

// runScenario drives one scenario and writes its BENCH file. The returned
// exit code is 1 when the run had correctness failures.
func runScenario(ctx context.Context, sc loadgen.Scenario, opts options) (int, error) {
	sc = applyOverrides(sc, opts)
	baseURL, cleanup, err := serverFor(sc, opts)
	if err != nil {
		return 0, err
	}
	defer cleanup()

	runner := &loadgen.Runner{
		BaseURL:  baseURL,
		Scenario: sc,
		Logf:     log.Printf,
	}
	rep, err := runner.Run(ctx)
	if err != nil {
		return 0, err
	}

	if err := os.MkdirAll(opts.outDir, 0o755); err != nil {
		return 0, err
	}
	path := filepath.Join(opts.outDir, loadgen.BenchFileName(sc.Name))
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	if err := loadgen.WriteBench(f, rep); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Close(); err != nil {
		return 0, err
	}
	log.Printf("wrote %s", path)

	code := 0
	if rep.Errors.LostJobs > 0 {
		log.Printf("FAIL: %d acknowledged jobs never reached a terminal state", rep.Errors.LostJobs)
		code = 1
	}
	if rep.Verify.AuditViolations > 0 {
		log.Printf("FAIL: %d of %d sampled results failed the audit verdict", rep.Verify.AuditViolations, rep.Verify.Sampled)
		code = 1
	}
	if rep.Verify.OracleMismatch > 0 {
		log.Printf("FAIL: %d of %d sampled results were not byte-identical to the library oracle", rep.Verify.OracleMismatch, rep.Verify.Sampled)
		code = 1
	}
	return code, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("ldivload: ")

	opts, fs, err := parseOptions(os.Args[1:])
	if err != nil {
		if err == flag.ErrHelp {
			return
		}
		if !errors.Is(err, errFlagParse) {
			fmt.Fprintln(os.Stderr, "ldivload:", err)
			fs.Usage()
		}
		os.Exit(2)
	}

	switch {
	case opts.list:
		for _, name := range loadgen.ScenarioNames() {
			sc, _ := loadgen.NamedScenario(name)
			ds := sc.Dataset
			if ds == "" {
				ds = "sal"
			}
			fmt.Printf("%-16s algo=%-8s l=%d rows=%-5d dataset=%-14s tenants=%-2d conc=%-2d %s\n",
				name, sc.Algorithm, sc.L, sc.Rows, ds, sc.Tenants, sc.Concurrency, loopModel(sc))
		}
		fmt.Printf("matrix           %d generated cells (-matrix)\n", len(loadgen.Matrix()))
		return
	case opts.compare != "":
		code, err := runCompare(opts)
		if err != nil {
			log.Fatal(err)
		}
		os.Exit(code)
	case opts.degrade != "":
		if err := runDegrade(opts); err != nil {
			log.Fatal(err)
		}
		return
	}

	ctx := context.Background()
	scenarios := []loadgen.Scenario{}
	if opts.matrix {
		scenarios = loadgen.Matrix()
	} else {
		sc, _ := loadgen.NamedScenario(opts.scenario)
		scenarios = append(scenarios, sc)
	}
	exit := 0
	for _, sc := range scenarios {
		code, err := runScenario(ctx, sc, opts)
		if err != nil {
			log.Fatal(err)
		}
		if code > exit {
			exit = code
		}
	}
	os.Exit(exit)
}

// loopModel renders a scenario's loop for -list.
func loopModel(sc loadgen.Scenario) string {
	if sc.RatePerSec > 0 {
		return fmt.Sprintf("open loop @ %g/s over %s", sc.RatePerSec, sc.Duration)
	}
	return fmt.Sprintf("closed loop over %s", sc.Duration)
}
