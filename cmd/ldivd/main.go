// Command ldivd is the anonymization job server: a long-running HTTP daemon
// that accepts CSV microdata, anonymizes it with one of the library's
// l-diversity algorithms on a bounded worker queue, and serves the released
// table back as CSV. See internal/service for the API and
// docs/ARCHITECTURE.md for a walkthrough.
//
// Usage:
//
//	ldivd -addr :8080 -workers 0 -queue 64 -cache 128
//
// Submit a job, poll it, fetch the release:
//
//	curl -X POST --data-binary @patients.csv \
//	  'http://localhost:8080/v1/jobs?algo=tp%2B&l=2&qi=Age,Gender&sa=Disease'
//	curl http://localhost:8080/v1/jobs/j000001
//	curl http://localhost:8080/v1/jobs/j000001/result
//
// On SIGINT/SIGTERM the server stops accepting jobs, drains the queue, and
// exits cleanly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ldiv/internal/service"
)

// options is the parsed and validated command line of ldivd.
type options struct {
	addr        string
	workers     int
	algoWorkers int
	queue       int
	cache       int
	retain      int
	maxBody     int64
	shutdown    time.Duration
	storeDir    string
	jobTimeout  time.Duration
	maxRetries  int
	tenantQPS   float64
}

// errFlagParse marks errors the ContinueOnError FlagSet has already printed
// (together with the usage text and flag defaults), so main exits without
// repeating them.
var errFlagParse = errors.New("flag parse error")

// parseOptions parses and validates the command line. The returned FlagSet
// lets main print the usage text (including every flag default) when
// validation fails.
func parseOptions(args []string) (options, *flag.FlagSet, error) {
	fs := flag.NewFlagSet("ldivd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "concurrent anonymization jobs; 0 means one per CPU")
	algoWorkers := fs.Int("algo-workers", 0, "worker bound for the TP core's parallel stages within one job (tp and tp+ only); 0 means one per CPU")
	queue := fs.Int("queue", service.DefaultQueueDepth, "job backlog bound; a full backlog rejects submissions with 429; 0 accepts a job only when a worker is free")
	cache := fs.Int("cache", service.DefaultCacheEntries, "LRU result-cache entries; negative disables caching")
	retain := fs.Int("retain", service.DefaultJobRetention, "finished jobs kept queryable (must be positive); negative retains all forever")
	maxBody := fs.Int64("max-body", service.DefaultMaxBodyBytes, "largest accepted CSV body in bytes")
	shutdown := fs.Duration("shutdown-timeout", 30*time.Second, "grace period for HTTP connections after the job queue drains")
	storeDir := fs.String("store-dir", "", "durable job-store directory; accepted jobs are journaled there (fsync'd before the 202) and recovered on restart; empty keeps jobs in memory only")
	jobTimeout := fs.Duration("job-timeout", 0, "per-attempt execution deadline; an attempt exceeding it fails the job; 0 disables")
	maxRetries := fs.Int("max-retries", service.DefaultMaxAttempts-1, "retries after a transient failure before a job is quarantined as poison")
	tenantQPS := fs.Float64("tenant-qps", 0, "per-tenant admission rate (token bucket keyed by the X-Tenant header); 0 disables quotas")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return options{}, fs, err
		}
		return options{}, fs, fmt.Errorf("%w: %v", errFlagParse, err)
	}
	if *addr == "" {
		return options{}, fs, errors.New("-addr must not be empty")
	}
	if *queue < 0 {
		return options{}, fs, fmt.Errorf("invalid -queue %d: must be non-negative", *queue)
	}
	if *retain == 0 {
		return options{}, fs, errors.New("invalid -retain 0: results would be evicted before they can be fetched; use a positive bound, or a negative value to retain all")
	}
	if *maxBody < 1 {
		return options{}, fs, fmt.Errorf("invalid -max-body %d: must be positive", *maxBody)
	}
	if *maxRetries < 0 {
		return options{}, fs, fmt.Errorf("invalid -max-retries %d: must be non-negative", *maxRetries)
	}
	if *jobTimeout < 0 {
		return options{}, fs, fmt.Errorf("invalid -job-timeout %v: must be non-negative", *jobTimeout)
	}
	if *tenantQPS < 0 {
		return options{}, fs, fmt.Errorf("invalid -tenant-qps %v: must be non-negative", *tenantQPS)
	}
	if *algoWorkers < 0 {
		return options{}, fs, fmt.Errorf("invalid -algo-workers %d: must be 0 (one per CPU) or positive", *algoWorkers)
	}
	return options{
		addr:        *addr,
		workers:     *workers,
		algoWorkers: *algoWorkers,
		queue:       *queue,
		cache:       *cache,
		retain:      *retain,
		maxBody:     *maxBody,
		shutdown:    *shutdown,
		storeDir:    *storeDir,
		jobTimeout:  *jobTimeout,
		maxRetries:  *maxRetries,
		tenantQPS:   *tenantQPS,
	}, fs, nil
}

// serviceConfig translates the parsed flags into a service.Config. The CLI's
// `-queue 0` means "no backlog" (accept a job only when a worker is free),
// while Config's 0 means "default", so 0 maps to the negative sentinel.
func serviceConfig(opts options) service.Config {
	queueDepth := opts.queue
	if queueDepth == 0 {
		queueDepth = -1
	}
	return service.Config{
		Workers:      opts.workers,
		AlgoWorkers:  opts.algoWorkers,
		QueueDepth:   queueDepth,
		CacheEntries: opts.cache,
		JobRetention: opts.retain,
		MaxBodyBytes: opts.maxBody,
		StoreDir:     opts.storeDir,
		JobTimeout:   opts.jobTimeout,
		// The CLI counts retries (attempts after the first); Config counts
		// total attempts.
		MaxAttempts: opts.maxRetries + 1,
		TenantQPS:   opts.tenantQPS,
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("ldivd: ")

	opts, fs, err := parseOptions(os.Args[1:])
	if err != nil {
		if err == flag.ErrHelp {
			return
		}
		if !errors.Is(err, errFlagParse) {
			fmt.Fprintln(os.Stderr, "ldivd:", err)
			fs.Usage()
		}
		os.Exit(2)
	}

	svc, err := service.Open(serviceConfig(opts))
	if err != nil {
		log.Fatalf("opening the durable store: %v", err)
	}
	httpServer := &http.Server{
		Addr:              opts.addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpServer.ListenAndServe() }()
	store := opts.storeDir
	if store == "" {
		store = "none"
	}
	log.Printf("listening on %s (workers=%d queue=%d cache=%d store=%s)",
		opts.addr, opts.workers, opts.queue, opts.cache, store)

	select {
	case err := <-serveErr:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Graceful shutdown: refuse new jobs, drain the accepted backlog (status
	// and result endpoints keep serving meanwhile), then close connections.
	log.Print("shutting down: draining in-flight jobs")
	svc.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), opts.shutdown)
	defer cancel()
	if err := httpServer.Shutdown(shutdownCtx); err != nil {
		log.Fatalf("shutdown: %v", err)
	}
	log.Print("drained; bye")
}
