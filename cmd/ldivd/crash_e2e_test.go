package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"ldiv"
)

// This file is the crash e2e: a real ldivd process is killed with SIGKILL
// mid-backlog and restarted on the same store directory, and every job the
// dead process acknowledged must reach a terminal state — with results
// byte-identical to running the library directly. No mocks anywhere: real
// binary, real HTTP, real disk, real kill -9.

// crashQuery is the submit query the crash e2e uses.
const crashQuery = "algo=tp%2B&l=2&qi=Age,Gender&sa=Disease"

// crashCSV builds a deterministic n-row 2-eligible table; seed varies the
// content so each job has a distinct submission key.
func crashCSV(n, seed int) string {
	var b strings.Builder
	b.WriteString("Age,Gender,Disease\n")
	diseases := [4]string{"flu", "cold", "angina", "ulcer"}
	genders := [2]string{"M", "F"}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%d,%s,%s\n", 20+(i*7+seed)%60, genders[i%2], diseases[(i+seed)%4])
	}
	return b.String()
}

// buildLdivd compiles the ldivd binary into dir.
func buildLdivd(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "ldivd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building ldivd: %v\n%s", err, out)
	}
	return bin
}

// freePort reserves and releases a localhost port for the server under test.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// startLdivd launches the binary and waits until /healthz answers.
func startLdivd(t *testing.T, bin, addr, storeDir string, extraArgs ...string) *exec.Cmd {
	t.Helper()
	args := append([]string{"-addr", addr, "-store-dir", storeDir, "-workers", "1"}, extraArgs...)
	cmd := exec.Command(bin, args...)
	cmd.Stdout = io.Discard
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd
			}
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			t.Fatal("ldivd did not become healthy in time")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// submitCSV POSTs a CSV and returns (status, job ID).
func submitCSV(t *testing.T, addr, csv string) (int, string) {
	t.Helper()
	resp, err := http.Post("http://"+addr+"/v1/jobs?"+crashQuery, "text/csv", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var view struct {
		ID string `json:"id"`
	}
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(body, &view); err != nil {
			t.Fatalf("decoding %q: %v", body, err)
		}
	}
	return resp.StatusCode, view.ID
}

// expectedRelease runs the same anonymization through the library, bypassing
// the server entirely, and returns the canonical release CSV.
func expectedRelease(t *testing.T, csv string) []byte {
	t.Helper()
	tab, err := ldiv.ReadCSV(strings.NewReader(csv), []string{"Age", "Gender"}, "Disease")
	if err != nil {
		t.Fatal(err)
	}
	gen, _, err := ldiv.AnonymizeWith(tab, 2, "tp+")
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := ldiv.WriteGeneralizedCSV(&b, gen); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func TestCrashRecoveryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess e2e skipped in -short mode")
	}
	workDir := t.TempDir()
	storeDir := filepath.Join(workDir, "store")
	bin := buildLdivd(t, workDir)
	addr := freePort(t)

	cmd := startLdivd(t, bin, addr, storeDir)
	killed := false
	defer func() {
		if !killed {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	}()

	// A fat job first so the single worker stays busy while the rest of the
	// backlog is acknowledged, then several small distinct jobs behind it.
	csvs := []string{crashCSV(60_000, 0)}
	for seed := 1; seed <= 5; seed++ {
		csvs = append(csvs, crashCSV(500, seed))
	}
	ids := make([]string, len(csvs))
	for i, csv := range csvs {
		code, id := submitCSV(t, addr, csv)
		if code != http.StatusAccepted && code != http.StatusOK {
			t.Fatalf("job %d: submit = %d, want 202 or 200", i, code)
		}
		ids[i] = id
	}

	// SIGKILL mid-backlog: no drain, no fsync beyond what already happened.
	// Every one of the jobs above was acknowledged, so every one must reach
	// a terminal state after restart.
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_, _ = cmd.Process.Wait()
	killed = true

	cmd2 := startLdivd(t, bin, addr, storeDir)
	defer func() {
		_ = cmd2.Process.Kill()
		_, _ = cmd2.Process.Wait()
	}()

	deadline := time.Now().Add(120 * time.Second)
	for i, id := range ids {
		for {
			resp, err := http.Get("http://" + addr + "/v1/jobs/" + id)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("job %s after restart: status endpoint = %d (%s) — an acknowledged job vanished", id, resp.StatusCode, body)
			}
			var view struct {
				Status string `json:"status"`
				Error  string `json:"error"`
			}
			if err := json.Unmarshal(body, &view); err != nil {
				t.Fatalf("decoding %q: %v", body, err)
			}
			if view.Status == "done" {
				break
			}
			if view.Status == "failed" || view.Status == "quarantined" {
				t.Fatalf("job %s ended %s after restart: %s", id, view.Status, view.Error)
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s still %s after restart; acknowledged work was lost", id, view.Status)
			}
			time.Sleep(50 * time.Millisecond)
		}

		resp, err := http.Get("http://" + addr + "/v1/jobs/" + id + "/result")
		if err != nil {
			t.Fatal(err)
		}
		got, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job %s result = %d", id, resp.StatusCode)
		}
		if want := expectedRelease(t, csvs[i]); !bytes.Equal(got, want) {
			t.Fatalf("job %s: recovered result differs from a direct library run (%d vs %d bytes)", id, len(got), len(want))
		}
	}

	// The durability metrics are live on the recovered server.
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, name := range []string{
		"ldivd_jobs_recovered_total",
		"ldivd_job_retries_total",
		"ldivd_jobs_quarantined_total",
		"ldivd_store_errors_total",
		"ldivd_tenant_rejections_total",
	} {
		if !bytes.Contains(metrics, []byte(name)) {
			t.Errorf("metrics missing %s after restart", name)
		}
	}
	recovered := false
	for _, line := range strings.Split(string(metrics), "\n") {
		if strings.HasPrefix(line, "ldivd_jobs_recovered_total ") && !strings.HasSuffix(line, " 0") {
			recovered = true
		}
	}
	if !recovered {
		t.Error("ldivd_jobs_recovered_total is zero after a restart that restored jobs")
	}
}
