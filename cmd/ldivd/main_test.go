package main

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestParseOptionsDefaults(t *testing.T) {
	opts, _, err := parseOptions(nil)
	if err != nil {
		t.Fatal(err)
	}
	if opts.addr != ":8080" || opts.workers != 0 || opts.algoWorkers != 0 ||
		opts.queue != 64 || opts.cache != 128 || opts.retain != 1024 ||
		opts.maxBody != 64<<20 || opts.shutdown != 30*time.Second {
		t.Errorf("defaults wrong: %+v", opts)
	}
}

func TestParseOptionsOverrides(t *testing.T) {
	opts, _, err := parseOptions([]string{
		"-addr", "127.0.0.1:9999", "-workers", "4", "-algo-workers", "1",
		"-queue", "8", "-cache", "-1", "-max-body", "1024", "-shutdown-timeout", "5s",
	})
	if err != nil {
		t.Fatal(err)
	}
	if opts.addr != "127.0.0.1:9999" || opts.workers != 4 || opts.algoWorkers != 1 ||
		opts.queue != 8 || opts.cache != -1 || opts.maxBody != 1024 ||
		opts.shutdown != 5*time.Second {
		t.Errorf("overrides wrong: %+v", opts)
	}
}

func TestParseOptionsRejectsBadInputs(t *testing.T) {
	tests := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"empty addr", []string{"-addr", ""}, "-addr must not be empty"},
		{"negative queue", []string{"-queue", "-1"}, "invalid -queue"},
		{"zero retain", []string{"-retain", "0"}, "invalid -retain 0"},
		{"zero max body", []string{"-max-body", "0"}, "invalid -max-body"},
		{"negative retries", []string{"-max-retries", "-1"}, "invalid -max-retries"},
		{"negative job timeout", []string{"-job-timeout", "-1s"}, "invalid -job-timeout"},
		{"negative tenant qps", []string{"-tenant-qps", "-0.5"}, "invalid -tenant-qps"},
		{"negative algo workers", []string{"-algo-workers", "-2"}, "invalid -algo-workers"},
		{"unknown flag", []string{"-nope"}, "flag parse error"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, fs, err := parseOptions(tc.args)
			fs.SetOutput(&bytes.Buffer{})
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestServiceConfigMapsZeroQueueToStrictHandoff(t *testing.T) {
	opts, _, err := parseOptions([]string{"-queue", "0"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg := serviceConfig(opts); cfg.QueueDepth >= 0 {
		t.Errorf("-queue 0 mapped to QueueDepth %d, want the negative zero-backlog sentinel", cfg.QueueDepth)
	}
	opts, _, err = parseOptions([]string{"-queue", "8"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg := serviceConfig(opts); cfg.QueueDepth != 8 {
		t.Errorf("-queue 8 mapped to QueueDepth %d", cfg.QueueDepth)
	}
}

func TestDurabilityFlagsMapIntoConfig(t *testing.T) {
	opts, _, err := parseOptions([]string{
		"-store-dir", "/tmp/ldivd-store", "-job-timeout", "90s",
		"-max-retries", "4", "-tenant-qps", "2.5", "-algo-workers", "2",
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := serviceConfig(opts)
	if cfg.StoreDir != "/tmp/ldivd-store" {
		t.Errorf("StoreDir = %q", cfg.StoreDir)
	}
	if cfg.JobTimeout != 90*time.Second {
		t.Errorf("JobTimeout = %v", cfg.JobTimeout)
	}
	// -max-retries counts retries; Config counts total attempts.
	if cfg.MaxAttempts != 5 {
		t.Errorf("MaxAttempts = %d, want 5 for -max-retries 4", cfg.MaxAttempts)
	}
	if cfg.TenantQPS != 2.5 {
		t.Errorf("TenantQPS = %v", cfg.TenantQPS)
	}
	if cfg.AlgoWorkers != 2 {
		t.Errorf("AlgoWorkers = %d, want 2", cfg.AlgoWorkers)
	}
}

func TestUsagePrintsFlagDefaults(t *testing.T) {
	_, fs, err := parseOptions([]string{"-queue", "-1"})
	if err == nil {
		t.Fatal("negative queue accepted")
	}
	var buf bytes.Buffer
	fs.SetOutput(&buf)
	fs.Usage()
	out := buf.String()
	for _, want := range []string{"-addr", ":8080", "-queue", "default 64", "-cache", "default 128"} {
		if !strings.Contains(out, want) {
			t.Errorf("usage output misses %q:\n%s", want, out)
		}
	}
}
