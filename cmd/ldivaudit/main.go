// Command ldivaudit independently verifies a published release against the
// original microdata: it re-derives the release's equivalence groups from the
// release alone, checks l-diversity on them, and checks that the release is
// consistent with the source (row counts, QI coverage, per-group sensitive
// multisets). It prints the canonical machine-readable verdict JSON — the
// same bytes ldiv.VerifyRelease and the ldivd server's POST /v1/verify
// produce — and exits 1 when the release fails verification.
//
// Usage:
//
//	ldivaudit -original patients.csv -release published.csv -qi Age,Gender -sa Disease -l 2
//	ldivaudit -original patients.csv -release qit.csv -st st.csv -qi Age,Gender -sa Disease -l 4
//
// Exit codes: 0 the release verifies, 1 it does not (or could not be read),
// 2 usage errors.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"strings"

	"ldiv"
)

// options is the parsed and validated command line of ldivaudit.
type options struct {
	original string
	release  string
	st       string
	qiCols   []string
	sa       string
	opts     ldiv.VerifyOptions
	pretty   bool
	quiet    bool
}

// errFlagParse marks errors the ContinueOnError FlagSet has already printed
// (together with the usage text and flag defaults), so main exits without
// repeating them.
var errFlagParse = errors.New("flag parse error")

// parseOptions parses and validates the command line.
func parseOptions(args []string) (options, *flag.FlagSet, error) {
	fs := flag.NewFlagSet("ldivaudit", flag.ContinueOnError)
	original := fs.String("original", "", "original microdata CSV path (required)")
	release := fs.String("release", "", "release CSV path: the generalized table, or anatomy's QIT (required)")
	st := fs.String("st", "", "anatomy sensitive-table CSV path (switches to anatomy verification)")
	qi := fs.String("qi", "", "comma-separated quasi-identifier column names (required)")
	sa := fs.String("sa", "", "sensitive attribute column name (required)")
	l := fs.Int("l", 0, "diversity parameter l the release claims (required, at least 2)")
	entropy := fs.Bool("entropy", false, "additionally require entropy l-diversity")
	c := fs.Float64("c", 0, "additionally require recursive (c,l)-diversity with this c (> 0 enables)")
	maxViolations := fs.Int("max-violations", 0, "cap on recorded violations (0 = default, negative = unlimited)")
	pretty := fs.Bool("pretty", false, "indent the verdict JSON")
	quiet := fs.Bool("quiet", false, "suppress the human-readable summary on stderr")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return options{}, fs, err
		}
		return options{}, fs, fmt.Errorf("%w: %v", errFlagParse, err)
	}
	if *original == "" || *release == "" {
		return options{}, fs, errors.New("-original and -release are required")
	}
	if *qi == "" || *sa == "" {
		return options{}, fs, errors.New("-qi and -sa are required")
	}
	if *l < 2 {
		return options{}, fs, fmt.Errorf("invalid -l %d: the diversity parameter must be at least 2", *l)
	}
	if *c != 0 && (!(*c > 0) || math.IsInf(*c, 1)) {
		return options{}, fs, fmt.Errorf("invalid -c %g: the recursive constant must be a positive finite number", *c)
	}
	qiCols := strings.Split(*qi, ",")
	for i := range qiCols {
		qiCols[i] = strings.TrimSpace(qiCols[i])
	}
	return options{
		original: *original,
		release:  *release,
		st:       *st,
		qiCols:   qiCols,
		sa:       *sa,
		opts: ldiv.VerifyOptions{
			L:             *l,
			Entropy:       *entropy,
			RecursiveC:    *c,
			MaxViolations: *maxViolations,
		},
		pretty: *pretty,
		quiet:  *quiet,
	}, fs, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("ldivaudit: ")

	opts, fs, err := parseOptions(os.Args[1:])
	if err != nil {
		if err == flag.ErrHelp {
			return
		}
		if !errors.Is(err, errFlagParse) {
			fmt.Fprintln(os.Stderr, "ldivaudit:", err)
			fs.Usage()
		}
		os.Exit(2)
	}

	orig, err := os.Open(opts.original)
	if err != nil {
		log.Fatal(err)
	}
	defer orig.Close()
	t, err := ldiv.ReadCSV(bufio.NewReader(orig), opts.qiCols, opts.sa)
	if err != nil {
		log.Fatal(err)
	}

	release, err := os.Open(opts.release)
	if err != nil {
		log.Fatal(err)
	}
	defer release.Close()

	var report *ldiv.ReleaseReport
	if opts.st != "" {
		st, err := os.Open(opts.st)
		if err != nil {
			log.Fatal(err)
		}
		defer st.Close()
		report, err = ldiv.VerifyAnatomyRelease(t, bufio.NewReader(release), bufio.NewReader(st), opts.opts)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		report, err = ldiv.VerifyRelease(t, bufio.NewReader(release), opts.opts)
		if err != nil {
			log.Fatal(err)
		}
	}

	out := bufio.NewWriter(os.Stdout)
	enc := json.NewEncoder(out)
	if opts.pretty {
		enc.SetIndent("", "  ")
	}
	if err := enc.Encode(report); err != nil {
		log.Fatal(err)
	}
	if err := out.Flush(); err != nil {
		log.Fatal(err)
	}

	if !opts.quiet {
		verdict := "PASS"
		if !report.OK {
			verdict = "FAIL"
		}
		fmt.Fprintf(os.Stderr, "%s: %d rows, %d release rows, %d groups, l=%d, privacy=%v fidelity=%v, %d violation(s)\n",
			verdict, report.Rows, report.ReleaseRows, report.Groups, report.L, report.Privacy, report.Fidelity, report.ViolationCount)
	}
	if !report.OK {
		os.Exit(1)
	}
}
