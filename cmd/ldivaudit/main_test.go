package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ldiv"
)

func TestParseOptions(t *testing.T) {
	base := []string{"-original", "o.csv", "-release", "r.csv", "-qi", "Age,Gender", "-sa", "Disease", "-l", "2"}
	tests := []struct {
		name    string
		args    []string
		wantErr string // substring of the expected error, "" for success
		wantL   int
		wantST  string
	}{
		{name: "generalized", args: base, wantL: 2},
		{name: "anatomy", args: append([]string{"-st", "st.csv"}, base...), wantL: 2, wantST: "st.csv"},
		{name: "l four", args: append([]string{"-l", "4"}, base[:len(base)-2]...), wantL: 4},
		{name: "missing files", args: []string{"-qi", "A", "-sa", "B", "-l", "2"}, wantErr: "-original and -release are required"},
		{name: "missing qi sa", args: []string{"-original", "o", "-release", "r", "-l", "2"}, wantErr: "-qi and -sa are required"},
		{name: "missing l", args: base[:len(base)-2], wantErr: "invalid -l"},
		{name: "l one", args: append([]string{"-l", "1"}, base[:len(base)-2]...), wantErr: "invalid -l"},
		{name: "negative c", args: append([]string{"-c", "-1"}, base...), wantErr: "invalid -c"},
		{name: "unknown flag", args: []string{"-nope"}, wantErr: "flag parse error"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			opts, _, err := parseOptions(tc.args)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error = %v, want substring %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if opts.opts.L != tc.wantL || opts.st != tc.wantST {
				t.Errorf("opts = %+v, want l %d st %q", opts, tc.wantL, tc.wantST)
			}
			if len(opts.qiCols) != 2 || opts.qiCols[0] != "Age" || opts.qiCols[1] != "Gender" {
				t.Errorf("qiCols = %v", opts.qiCols)
			}
		})
	}
}

func TestUsagePrintsFlagDefaults(t *testing.T) {
	_, fs, err := parseOptions([]string{"-l", "1", "-original", "o", "-release", "r", "-qi", "A", "-sa", "B"})
	if err == nil {
		t.Fatal("l=1 accepted")
	}
	var buf bytes.Buffer
	fs.SetOutput(&buf)
	fs.Usage()
	out := buf.String()
	for _, want := range []string{"-original", "-release", "-st", "-entropy", "-pretty"} {
		if !strings.Contains(out, want) {
			t.Errorf("usage output misses %q:\n%s", want, out)
		}
	}
}

const sampleCSV = `Age,Gender,Disease
30,M,flu
30,F,cold
40,M,flu
40,F,cold
50,M,angina
50,F,flu
60,M,cold
60,F,angina
`

// writeFiles materializes the original table and a TP+ release in a temp dir
// and returns their paths.
func writeFiles(t *testing.T) (original, release string) {
	t.Helper()
	dir := t.TempDir()
	original = filepath.Join(dir, "original.csv")
	if err := os.WriteFile(original, []byte(sampleCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	tbl, err := ldiv.ReadCSV(strings.NewReader(sampleCSV), []string{"Age", "Gender"}, "Disease")
	if err != nil {
		t.Fatal(err)
	}
	gen, _, err := ldiv.AnonymizeWith(tbl, 2, "tp+")
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := ldiv.WriteGeneralizedCSV(&b, gen); err != nil {
		t.Fatal(err)
	}
	release = filepath.Join(dir, "release.csv")
	if err := os.WriteFile(release, b.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return original, release
}

// TestVerdictMatchesLibrary checks that the CLI's verification path (read
// files, verify, canonical JSON) agrees with calling the library directly.
func TestVerdictMatchesLibrary(t *testing.T) {
	originalPath, releasePath := writeFiles(t)

	tbl, err := ldiv.ReadCSV(strings.NewReader(sampleCSV), []string{"Age", "Gender"}, "Disease")
	if err != nil {
		t.Fatal(err)
	}
	releaseBytes, err := os.ReadFile(releasePath)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ldiv.VerifyRelease(tbl, bytes.NewReader(releaseBytes), ldiv.VerifyOptions{L: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !want.OK {
		t.Fatalf("TP+ release failed library verification: %+v", want.Violations)
	}

	// Re-run through the same file-based path the CLI takes.
	origFile, err := os.Open(originalPath)
	if err != nil {
		t.Fatal(err)
	}
	defer origFile.Close()
	tbl2, err := ldiv.ReadCSV(origFile, []string{"Age", "Gender"}, "Disease")
	if err != nil {
		t.Fatal(err)
	}
	relFile, err := os.Open(releasePath)
	if err != nil {
		t.Fatal(err)
	}
	defer relFile.Close()
	got, err := ldiv.VerifyRelease(tbl2, relFile, ldiv.VerifyOptions{L: 2})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(got)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatalf("file-based verdict differs:\n%s\n%s", wantJSON, gotJSON)
	}
}
