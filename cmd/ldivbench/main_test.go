package main

import (
	"reflect"
	"testing"

	"ldiv/internal/experiment"
)

func TestIsKnown(t *testing.T) {
	for _, name := range []string{"2", "3", "4", "5", "6", "7", "8", "p3", "t6"} {
		if !isKnown(name) {
			t.Errorf("isKnown(%q) = false, want true", name)
		}
	}
	for _, name := range []string{"", "1", "9", "all", "bogus", "P3", "fig2"} {
		if isKnown(name) {
			t.Errorf("isKnown(%q) = true, want false", name)
		}
	}
}

func TestParseOptionsDefaults(t *testing.T) {
	opts, err := parseOptions(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := experiment.DefaultConfig()
	want.Workers = 1
	if !reflect.DeepEqual(opts.cfg, want) {
		t.Errorf("default config = %+v, want %+v", opts.cfg, want)
	}
	if opts.fig != "all" {
		t.Errorf("default fig = %q, want all", opts.fig)
	}
}

func TestParseOptionsOverrides(t *testing.T) {
	opts, err := parseOptions([]string{
		"-fig", "P3", "-rows", "1234", "-klrows", "99", "-projections", "0",
		"-seed", "7", "-workers", "4",
	})
	if err != nil {
		t.Fatal(err)
	}
	if opts.fig != "p3" {
		t.Errorf("fig = %q, want p3 (lowercased)", opts.fig)
	}
	cfg := opts.cfg
	if cfg.Rows != 1234 || cfg.KLRows != 99 || cfg.MaxProjections != 0 || cfg.Seed != 7 || cfg.Workers != 4 {
		t.Errorf("overrides not applied: %+v", cfg)
	}
}

func TestParseOptionsPaperScale(t *testing.T) {
	opts, err := parseOptions([]string{"-paper", "-workers", "0"})
	if err != nil {
		t.Fatal(err)
	}
	paper := experiment.PaperConfig()
	if opts.cfg.Rows != paper.Rows || opts.cfg.KLRows != paper.KLRows {
		t.Errorf("paper config not selected: %+v", opts.cfg)
	}
	if opts.cfg.Workers != 0 {
		t.Errorf("workers = %d, want 0 (one per CPU)", opts.cfg.Workers)
	}
}

func TestParseOptionsRejectsUnknownFigureBeforeRunning(t *testing.T) {
	if _, err := parseOptions([]string{"-fig", "bogus"}); err == nil {
		t.Fatal("unknown figure accepted")
	}
	if _, err := parseOptions([]string{"-notaflag"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
