package main

import (
	"reflect"
	"strings"
	"testing"

	"ldiv/internal/dataset"
	"ldiv/internal/experiment"
)

func TestIsKnown(t *testing.T) {
	for _, name := range []string{"2", "3", "4", "5", "6", "7", "8", "p3", "t6", "corpus"} {
		if !isKnown(name) {
			t.Errorf("isKnown(%q) = false, want true", name)
		}
	}
	for _, name := range []string{"", "1", "9", "all", "bogus", "P3", "fig2"} {
		if isKnown(name) {
			t.Errorf("isKnown(%q) = true, want false", name)
		}
	}
}

func TestParseOptionsDefaults(t *testing.T) {
	opts, _, err := parseOptions(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := experiment.DefaultConfig()
	want.Workers = 1
	if !reflect.DeepEqual(opts.cfg, want) {
		t.Errorf("default config = %+v, want %+v", opts.cfg, want)
	}
	if opts.fig != "all" {
		t.Errorf("default fig = %q, want all", opts.fig)
	}
}

func TestParseOptionsOverrides(t *testing.T) {
	opts, _, err := parseOptions([]string{
		"-fig", "P3", "-rows", "1234", "-klrows", "99", "-projections", "0",
		"-seed", "7", "-workers", "4",
		"-cpuprofile", "cpu.pprof", "-memprofile", "mem.pprof",
	})
	if err != nil {
		t.Fatal(err)
	}
	if opts.fig != "p3" {
		t.Errorf("fig = %q, want p3 (lowercased)", opts.fig)
	}
	if opts.cpuProfile != "cpu.pprof" || opts.memProfile != "mem.pprof" {
		t.Errorf("profile paths not captured: %+v", opts)
	}
	cfg := opts.cfg
	if cfg.Rows != 1234 || cfg.KLRows != 99 || cfg.MaxProjections != 0 || cfg.Seed != 7 || cfg.Workers != 4 {
		t.Errorf("overrides not applied: %+v", cfg)
	}
}

func TestParseOptionsPaperScale(t *testing.T) {
	opts, _, err := parseOptions([]string{"-paper", "-workers", "0"})
	if err != nil {
		t.Fatal(err)
	}
	paper := experiment.PaperConfig()
	if opts.cfg.Rows != paper.Rows || opts.cfg.KLRows != paper.KLRows {
		t.Errorf("paper config not selected: %+v", opts.cfg)
	}
	if opts.cfg.Workers != 0 {
		t.Errorf("workers = %d, want 0 (one per CPU)", opts.cfg.Workers)
	}
}

// TestParseOptionsRejectsInvalid pins the parse-time validation: every bad
// flag combination must fail before any experiment runs, with an error
// message naming the offending flag (main prints it with the usage text and
// exits 2).
func TestParseOptionsRejectsInvalid(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"unknown figure", []string{"-fig", "bogus"}, "unknown figure"},
		{"unknown flag", []string{"-notaflag"}, "flag parse error"},
		{"negative rows", []string{"-rows", "-1"}, "-rows"},
		{"negative klrows", []string{"-klrows", "-5"}, "-klrows"},
		{"projections below -1", []string{"-projections", "-2"}, "-projections"},
		{"negative workers", []string{"-workers", "-3"}, "-workers"},
		{"negative rows with paper", []string{"-paper", "-rows", "-600000"}, "-rows"},
		{"negative corpusrows", []string{"-corpusrows", "-7"}, "-corpusrows"},
		{"unknown dataset family", []string{"-fig", "corpus", "-dataset", "census"}, "unknown dataset family"},
		{"unknown family in list", []string{"-dataset", "sal,bogus"}, "unknown dataset family"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, fs, err := parseOptions(tc.args)
			if err == nil {
				t.Fatalf("parseOptions(%v) accepted invalid input", tc.args)
			}
			if fs == nil {
				t.Fatal("parseOptions returned a nil FlagSet; main cannot print usage")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestParseOptionsAcceptsBoundaryValues pins the values that must remain
// valid: 0 means "default" for the size flags and "one per CPU" for workers.
func TestParseOptionsAcceptsBoundaryValues(t *testing.T) {
	opts, _, err := parseOptions([]string{"-rows", "0", "-klrows", "0", "-projections", "-1", "-workers", "0"})
	if err != nil {
		t.Fatal(err)
	}
	def := experiment.DefaultConfig()
	if opts.cfg.Rows != def.Rows || opts.cfg.KLRows != def.KLRows || opts.cfg.MaxProjections != def.MaxProjections {
		t.Errorf("zero/default flags changed the config: %+v", opts.cfg)
	}
	if opts.cfg.Workers != 0 {
		t.Errorf("workers = %d, want 0", opts.cfg.Workers)
	}
}

// TestParseOptionsCorpusSelection pins the -fig corpus plumbing: the family
// list is validated and normalized at parse time, "all" (the default) means
// the whole catalog (nil selection), and -corpusrows feeds the config.
func TestParseOptionsCorpusSelection(t *testing.T) {
	opts, _, err := parseOptions([]string{"-fig", "corpus"})
	if err != nil {
		t.Fatal(err)
	}
	if opts.fig != "corpus" || opts.families != nil {
		t.Errorf("default corpus selection = %+v, want fig corpus with nil families", opts)
	}

	opts, _, err = parseOptions([]string{
		"-fig", "corpus", "-dataset", " Heavytail-SA , near-duplicate ", "-corpusrows", "800",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(opts.families, []string{"heavytail-sa", "near-duplicate"}) {
		t.Errorf("families = %v, want normalized pair", opts.families)
	}
	if opts.cfg.CorpusRows != 800 {
		t.Errorf("CorpusRows = %d, want 800", opts.cfg.CorpusRows)
	}

	for _, name := range dataset.Families() {
		if _, _, err := parseOptions([]string{"-fig", "corpus", "-dataset", name}); err != nil {
			t.Errorf("family %q rejected: %v", name, err)
		}
	}
}

// TestCorpusFigureShape runs the sweep on the degenerate edge families at a
// tiny cardinality and pins the figure contract: one figure per requested
// family, a series per generalization algorithm, and infeasible l values
// omitted (sa-card-l defaults to max eligible l = 3, so l = 4 is absent).
func TestCorpusFigureShape(t *testing.T) {
	cfg := experiment.DefaultConfig()
	cfg.CorpusRows = 300
	figs, err := experiment.NewRunner(cfg).Corpus([]string{"sa-card-l", "distinct-sa"})
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 {
		t.Fatalf("got %d figures, want 2", len(figs))
	}
	if figs[0].ID != "corpus-sa-card-l" || figs[1].ID != "corpus-distinct-sa" {
		t.Errorf("figure IDs = %q, %q", figs[0].ID, figs[1].ID)
	}
	for _, fig := range figs {
		if len(fig.Series) != len(experiment.CorpusAlgorithms) {
			t.Errorf("%s: %d series, want %d", fig.ID, len(fig.Series), len(experiment.CorpusAlgorithms))
		}
	}
	for _, s := range figs[0].Series {
		if len(s.Points) != 2 {
			t.Errorf("sa-card-l series %s has %d points, want 2 (l=4 infeasible)", s.Name, len(s.Points))
		}
		for _, p := range s.Points {
			if p.X != 2 && p.X != 3 {
				t.Errorf("sa-card-l series %s has point at l=%v", s.Name, p.X)
			}
		}
	}
}
