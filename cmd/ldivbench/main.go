// Command ldivbench regenerates the paper's evaluation (Section 6): each
// figure is printed as a text table with the same rows and series the paper
// plots. Absolute values depend on the machine and on the synthetic data, but
// the shapes (who wins, how curves grow with l, d and n) reproduce the paper.
//
// Usage:
//
//	ldivbench -fig all                 # laptop-scale defaults
//	ldivbench -fig 2 -rows 600000 -projections 0   # paper-scale Figure 2
//	ldivbench -fig p3                  # phase-three frequency study
//	ldivbench -fig all -workers 0      # one worker per CPU
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"ldiv/internal/experiment"
)

// options is the parsed command line: the figure selector plus the assembled
// experiment configuration.
type options struct {
	fig string
	cfg experiment.Config
}

// errFlagParse marks errors the ContinueOnError FlagSet has already printed
// (together with the usage text), so main exits without repeating them.
var errFlagParse = errors.New("flag parse error")

// parseOptions builds the experiment configuration from the command line.
// Unknown -fig values, negative dataset sizes and negative worker counts are
// all rejected here, before any experiment runs; main prints the usage text
// (with every flag default) and exits 2 on such errors, matching the
// parse-time validation of cmd/anonymize and cmd/datagen.
func parseOptions(args []string) (options, *flag.FlagSet, error) {
	fs := flag.NewFlagSet("ldivbench", flag.ContinueOnError)
	fig := fs.String("fig", "all", "which experiment to run: 2,3,4,5,6,7,8,p3,t6 or all")
	rows := fs.Int("rows", 0, "base table cardinality (0 = default 60000)")
	klRows := fs.Int("klrows", 0, "cardinality for the KL figures (0 = default 15000)")
	projections := fs.Int("projections", -1, "max projections per d (-1 = default 5, 0 = all C(7,d) as in the paper)")
	seed := fs.Int64("seed", 1, "generator seed")
	workers := fs.Int("workers", 1, "concurrent experiment cells (1 = serial, 0 = one per CPU)")
	paper := fs.Bool("paper", false, "use the full paper-scale configuration (slow)")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return options{}, fs, err
		}
		return options{}, fs, fmt.Errorf("%w: %v", errFlagParse, err)
	}

	if *rows < 0 {
		return options{}, fs, fmt.Errorf("invalid -rows %d: must be positive (or 0 for the default)", *rows)
	}
	if *klRows < 0 {
		return options{}, fs, fmt.Errorf("invalid -klrows %d: must be positive (or 0 for the default)", *klRows)
	}
	if *projections < -1 {
		return options{}, fs, fmt.Errorf("invalid -projections %d: must be -1 (default), 0 (all) or positive", *projections)
	}
	if *workers < 0 {
		return options{}, fs, fmt.Errorf("invalid -workers %d: must be positive (or 0 for one per CPU)", *workers)
	}

	cfg := experiment.DefaultConfig()
	if *paper {
		cfg = experiment.PaperConfig()
	}
	if *rows > 0 {
		cfg.Rows = *rows
	}
	if *klRows > 0 {
		cfg.KLRows = *klRows
	}
	if *projections >= 0 {
		cfg.MaxProjections = *projections
	}
	cfg.Seed = *seed
	cfg.Workers = *workers

	want := strings.ToLower(*fig)
	if want != "all" && !isKnown(want) {
		return options{}, fs, fmt.Errorf("unknown figure %q", *fig)
	}
	return options{fig: want, cfg: cfg}, fs, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("ldivbench: ")

	opts, fs, err := parseOptions(os.Args[1:])
	if err != nil {
		if err == flag.ErrHelp {
			return
		}
		if !errors.Is(err, errFlagParse) {
			// Semantic errors (unknown figure, negative sizes or workers)
			// have not been printed yet; show them with the flag defaults.
			fmt.Fprintln(os.Stderr, "ldivbench:", err)
			fs.Usage()
		}
		os.Exit(2)
	}
	r := experiment.NewRunner(opts.cfg)

	run := func(name string, f func() ([]experiment.Figure, error)) {
		start := time.Now()
		figs, err := f()
		if err != nil {
			log.Fatalf("figure %s: %v", name, err)
		}
		for _, fig := range figs {
			fmt.Println(experiment.Format(fig))
		}
		fmt.Printf("(figure %s completed in %s)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	selected := func(name string) bool { return opts.fig == "all" || opts.fig == name }

	if selected("t6") {
		fmt.Println(experiment.Format(experiment.Table6()))
	}
	if selected("2") {
		run("2", r.Figure2)
	}
	if selected("3") {
		run("3", r.Figure3)
	}
	if selected("4") {
		run("4", r.Figure4)
	}
	if selected("5") {
		run("5", r.Figure5)
	}
	if selected("6") {
		run("6", r.Figure6)
	}
	if selected("7") {
		run("7", r.Figure7)
	}
	if selected("8") {
		run("8", r.Figure8)
	}
	if selected("p3") {
		start := time.Now()
		rep, err := r.Phase3Frequency()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("Phase-three frequency study (Section 6.1)")
		fmt.Printf("TP runs: %d   runs reaching phase three: %d\n", rep.Runs, rep.Phase3Runs)
		for d, c := range rep.ByDimension {
			fmt.Printf("  d=%d: %d phase-three runs\n", d, c)
		}
		if rep.Phase3Runs == 0 {
			fmt.Println("As in the paper, every run terminated before phase three,")
			fmt.Println("so every returned solution is an O(d)-approximation.")
		}
		fmt.Printf("(completed in %s)\n", time.Since(start).Round(time.Millisecond))
	}
}

func isKnown(name string) bool {
	switch name {
	case "2", "3", "4", "5", "6", "7", "8", "p3", "t6":
		return true
	}
	return false
}
