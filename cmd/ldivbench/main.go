// Command ldivbench regenerates the paper's evaluation (Section 6): each
// figure is printed as a text table with the same rows and series the paper
// plots. Absolute values depend on the machine and on the synthetic data, but
// the shapes (who wins, how curves grow with l, d and n) reproduce the paper.
//
// Usage:
//
//	ldivbench -fig all                 # laptop-scale defaults
//	ldivbench -fig 2 -rows 600000 -projections 0   # paper-scale Figure 2
//	ldivbench -fig p3                  # phase-three frequency study
//	ldivbench -fig all -workers 0      # one worker per CPU
//	ldivbench -fig 4 -cpuprofile cpu.pprof -memprofile mem.pprof  # profile the SAL-4 timing run
//	ldivbench -fig corpus              # scenario-corpus sweep, every family
//	ldivbench -fig corpus -dataset heavytail-sa,near-duplicate
//
// The corpus sweep is not part of -fig all: it is not a paper figure, so
// keeping it separate leaves the deterministic paper output byte-identical.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"ldiv/internal/dataset"
	"ldiv/internal/experiment"
)

// options is the parsed command line: the figure selector plus the assembled
// experiment configuration, the corpus family selection and the optional
// pprof output paths.
type options struct {
	fig        string
	families   []string
	cfg        experiment.Config
	cpuProfile string
	memProfile string
}

// errFlagParse marks errors the ContinueOnError FlagSet has already printed
// (together with the usage text), so main exits without repeating them.
var errFlagParse = errors.New("flag parse error")

// parseOptions builds the experiment configuration from the command line.
// Unknown -fig values, negative dataset sizes and negative worker counts are
// all rejected here, before any experiment runs; main prints the usage text
// (with every flag default) and exits 2 on such errors, matching the
// parse-time validation of cmd/anonymize and cmd/datagen.
func parseOptions(args []string) (options, *flag.FlagSet, error) {
	fs := flag.NewFlagSet("ldivbench", flag.ContinueOnError)
	fig := fs.String("fig", "all", "which experiment to run: 2,3,4,5,6,7,8,p3,t6, corpus or all (all excludes corpus)")
	rows := fs.Int("rows", 0, "base table cardinality (0 = default 60000)")
	klRows := fs.Int("klrows", 0, "cardinality for the KL figures (0 = default 15000)")
	families := fs.String("dataset", "all",
		"comma-separated scenario-corpus families for -fig corpus (all = whole catalog): "+strings.Join(dataset.Families(), ", "))
	corpusRows := fs.Int("corpusrows", 0, "per-family cardinality for -fig corpus (0 = default 6000)")
	projections := fs.Int("projections", -1, "max projections per d (-1 = default 5, 0 = all C(7,d) as in the paper)")
	seed := fs.Int64("seed", 1, "generator seed")
	workers := fs.Int("workers", 1, "concurrent experiment cells (1 = serial, 0 = one per CPU)")
	paper := fs.Bool("paper", false, "use the full paper-scale configuration (slow)")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile of the selected figures to this file")
	memProfile := fs.String("memprofile", "", "write a pprof allocation profile (after the figures finish) to this file")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return options{}, fs, err
		}
		return options{}, fs, fmt.Errorf("%w: %v", errFlagParse, err)
	}

	if *rows < 0 {
		return options{}, fs, fmt.Errorf("invalid -rows %d: must be positive (or 0 for the default)", *rows)
	}
	if *klRows < 0 {
		return options{}, fs, fmt.Errorf("invalid -klrows %d: must be positive (or 0 for the default)", *klRows)
	}
	if *projections < -1 {
		return options{}, fs, fmt.Errorf("invalid -projections %d: must be -1 (default), 0 (all) or positive", *projections)
	}
	if *workers < 0 {
		return options{}, fs, fmt.Errorf("invalid -workers %d: must be positive (or 0 for one per CPU)", *workers)
	}
	if *corpusRows < 0 {
		return options{}, fs, fmt.Errorf("invalid -corpusrows %d: must be positive (or 0 for the default)", *corpusRows)
	}

	// The family selection is validated at parse time — like -fig — so a typo
	// fails before any experiment runs, not after minutes of figures.
	var fams []string
	if sel := strings.ToLower(*families); sel != "all" {
		for _, name := range strings.Split(sel, ",") {
			name = strings.TrimSpace(name)
			fam, ok := dataset.Lookup(name)
			if !ok {
				return options{}, fs, fmt.Errorf("unknown dataset family %q (want one of %s)",
					name, strings.Join(dataset.Families(), ", "))
			}
			fams = append(fams, fam.Name)
		}
	}

	cfg := experiment.DefaultConfig()
	if *paper {
		cfg = experiment.PaperConfig()
	}
	if *rows > 0 {
		cfg.Rows = *rows
	}
	if *klRows > 0 {
		cfg.KLRows = *klRows
	}
	if *projections >= 0 {
		cfg.MaxProjections = *projections
	}
	if *corpusRows > 0 {
		cfg.CorpusRows = *corpusRows
	}
	cfg.Seed = *seed
	cfg.Workers = *workers

	want := strings.ToLower(*fig)
	if want != "all" && !isKnown(want) {
		return options{}, fs, fmt.Errorf("unknown figure %q", *fig)
	}
	return options{fig: want, families: fams, cfg: cfg, cpuProfile: *cpuProfile, memProfile: *memProfile}, fs, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("ldivbench: ")

	opts, fs, err := parseOptions(os.Args[1:])
	if err != nil {
		if err == flag.ErrHelp {
			return
		}
		if !errors.Is(err, errFlagParse) {
			// Semantic errors (unknown figure, negative sizes or workers)
			// have not been printed yet; show them with the flag defaults.
			fmt.Fprintln(os.Stderr, "ldivbench:", err)
			fs.Usage()
		}
		os.Exit(2)
	}
	if opts.cpuProfile != "" {
		f, err := os.Create(opts.cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("starting the CPU profile: %v", err)
		}
		// Stop and flush in main rather than in runFigures, so the profile
		// survives a figure error; log.Fatal inside runFigures would skip it.
		defer f.Close()
	}

	err = runFigures(opts)

	if opts.cpuProfile != "" {
		pprof.StopCPUProfile()
	}
	if opts.memProfile != "" {
		f, ferr := os.Create(opts.memProfile)
		if ferr != nil {
			log.Fatal(ferr)
		}
		runtime.GC() // settle the heap so the allocs profile reflects the run
		if werr := pprof.Lookup("allocs").WriteTo(f, 0); werr != nil {
			log.Fatalf("writing the allocation profile: %v", werr)
		}
		if cerr := f.Close(); cerr != nil {
			log.Fatal(cerr)
		}
	}
	if err != nil {
		log.Fatal(err)
	}
}

// runFigures executes the selected figures. Errors are returned (not
// log.Fatal'd) so main can flush the pprof profiles first.
func runFigures(opts options) error {
	r := experiment.NewRunner(opts.cfg)

	run := func(name string, f func() ([]experiment.Figure, error)) error {
		start := time.Now()
		figs, err := f()
		if err != nil {
			return fmt.Errorf("figure %s: %v", name, err)
		}
		for _, fig := range figs {
			fmt.Println(experiment.Format(fig))
		}
		fmt.Printf("(figure %s completed in %s)\n\n", name, time.Since(start).Round(time.Millisecond))
		return nil
	}

	selected := func(name string) bool { return opts.fig == "all" || opts.fig == name }

	if selected("t6") {
		fmt.Println(experiment.Format(experiment.Table6()))
	}
	figures := []struct {
		name string
		f    func() ([]experiment.Figure, error)
	}{
		{"2", r.Figure2}, {"3", r.Figure3}, {"4", r.Figure4}, {"5", r.Figure5},
		{"6", r.Figure6}, {"7", r.Figure7}, {"8", r.Figure8},
	}
	for _, fig := range figures {
		if selected(fig.name) {
			if err := run(fig.name, fig.f); err != nil {
				return err
			}
		}
	}
	// The corpus sweep runs only when asked for by name: it is not a paper
	// figure, and -fig all must keep producing byte-identical paper output.
	if opts.fig == "corpus" {
		if err := run("corpus", func() ([]experiment.Figure, error) {
			return r.Corpus(opts.families)
		}); err != nil {
			return err
		}
	}
	if selected("p3") {
		start := time.Now()
		rep, err := r.Phase3Frequency()
		if err != nil {
			return err
		}
		fmt.Println("Phase-three frequency study (Section 6.1)")
		fmt.Printf("TP runs: %d   runs reaching phase three: %d\n", rep.Runs, rep.Phase3Runs)
		for d, c := range rep.ByDimension {
			fmt.Printf("  d=%d: %d phase-three runs\n", d, c)
		}
		if rep.Phase3Runs == 0 {
			fmt.Println("As in the paper, every run terminated before phase three,")
			fmt.Println("so every returned solution is an O(d)-approximation.")
		}
		fmt.Printf("(completed in %s)\n", time.Since(start).Round(time.Millisecond))
	}
	return nil
}

func isKnown(name string) bool {
	switch name {
	case "2", "3", "4", "5", "6", "7", "8", "p3", "t6", "corpus":
		return true
	}
	return false
}
