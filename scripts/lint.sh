#!/bin/sh
# lint.sh runs ldivlint, the repo's own analyzer suite (internal/lint), over
# the whole module. It exits nonzero if any analyzer reports a diagnostic
# (exit 3, the multichecker convention) or a package fails to load (exit 1),
# so `make lint` and CI fail on the first unsuppressed violation.
#
# Diagnostics name the analyzer; suppress a false positive in place with
#     //lint:ignore <analyzer> <reason>
# where the reason is mandatory — a reasonless ignore is itself a diagnostic.
set -eu

cd "$(dirname "$0")/.."

exec go run ./cmd/ldivlint ./...
