#!/bin/sh
# server-smoke.sh builds ldivd, starts it with a durable store, runs one job
# through the full submit -> poll -> result round trip with curl, checks
# /healthz and /metrics, kills the daemon with SIGKILL and asserts the
# restarted daemon recovers every acknowledged job from the store, then shuts
# it down gracefully. CI runs this on every push so neither the served path
# nor crash recovery can rot. Requires: go, curl.
set -eu

PORT="${LDIVD_SMOKE_PORT:-8356}"
BASE="http://127.0.0.1:$PORT"
TMP="$(mktemp -d)"
BIN="$TMP/ldivd"

cleanup() {
    if [ -n "${LDIVD_PID:-}" ] && kill -0 "$LDIVD_PID" 2>/dev/null; then
        kill -TERM "$LDIVD_PID" 2>/dev/null || true
        wait "$LDIVD_PID" 2>/dev/null || true
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "smoke: building ldivd"
go build -o "$BIN" ./cmd/ldivd

STORE_DIR="$TMP/store"

start_ldivd() {
    "$BIN" -addr "127.0.0.1:$PORT" -store-dir "$STORE_DIR" >>"$TMP/ldivd.log" 2>&1 &
    LDIVD_PID=$!
    i=0
    until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -ge 50 ]; then
            echo "smoke: server never became healthy" >&2
            cat "$TMP/ldivd.log" >&2
            exit 1
        fi
        sleep 0.2
    done
}

echo "smoke: starting ldivd (store: $STORE_DIR)"
start_ldivd

cat >"$TMP/smoke.csv" <<'EOF'
Age,Gender,Disease
30,M,flu
30,F,cold
40,M,flu
40,F,cold
50,M,angina
50,F,flu
60,M,cold
60,F,angina
EOF

echo "smoke: submitting job"
SUBMIT="$(curl -fsS -X POST --data-binary @"$TMP/smoke.csv" \
    "$BASE/v1/jobs?algo=tp%2B&l=2&qi=Age,Gender&sa=Disease")"
JOB_ID="$(printf '%s' "$SUBMIT" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
if [ -z "$JOB_ID" ]; then
    echo "smoke: no job id in response: $SUBMIT" >&2
    exit 1
fi

echo "smoke: polling $JOB_ID"
i=0
while :; do
    STATUS_JSON="$(curl -fsS "$BASE/v1/jobs/$JOB_ID")"
    case "$STATUS_JSON" in
    *'"status":"done"'*) break ;;
    *'"status":"failed"'*)
        echo "smoke: job failed: $STATUS_JSON" >&2
        exit 1
        ;;
    esac
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "smoke: job never finished: $STATUS_JSON" >&2
        exit 1
    fi
    sleep 0.2
done

echo "smoke: fetching result"
RESULT="$(curl -fsS "$BASE/v1/jobs/$JOB_ID/result")"
case "$RESULT" in
Age,Gender,Disease*) : ;;
*)
    echo "smoke: unexpected result header: $RESULT" >&2
    exit 1
    ;;
esac
ROWS="$(printf '%s\n' "$RESULT" | wc -l)"
if [ "$ROWS" -ne 9 ]; then
    echo "smoke: result has $ROWS lines, want 9" >&2
    exit 1
fi

echo "smoke: verifying the release the server handed out"
printf '%s' "$RESULT" >"$TMP/release.csv"
VERDICT="$(curl -fsS -X POST \
    -F "original=@$TMP/smoke.csv" -F "release=@$TMP/release.csv" \
    "$BASE/v1/verify?l=2&qi=Age,Gender&sa=Disease")"
case "$VERDICT" in
*'"ok":true'*) : ;;
*)
    echo "smoke: the served release failed its own audit: $VERDICT" >&2
    exit 1
    ;;
esac

echo "smoke: verifying a tampered release is rejected"
sed 's/flu/angina/' "$TMP/release.csv" >"$TMP/tampered.csv"
VERDICT="$(curl -fsS -X POST \
    -F "original=@$TMP/smoke.csv" -F "release=@$TMP/tampered.csv" \
    "$BASE/v1/verify?l=2&qi=Age,Gender&sa=Disease")"
case "$VERDICT" in
*'"ok":false'*) : ;;
*)
    echo "smoke: a tampered release passed verification: $VERDICT" >&2
    exit 1
    ;;
esac

echo "smoke: checking /metrics"
METRICS="$(curl -fsS "$BASE/metrics")"
printf '%s\n' "$METRICS" | grep -q '^ldivd_jobs_done_total 1$' || {
    echo "smoke: metrics do not report the finished job" >&2
    exit 1
}
printf '%s\n' "$METRICS" | grep -q '^ldivd_verifies_total 2$' || {
    echo "smoke: metrics do not report the verifications" >&2
    exit 1
}

echo "smoke: crash recovery — submit, SIGKILL, restart, poll"
cat >"$TMP/crash.csv" <<'EOF'
Age,Gender,Disease
31,M,flu
31,F,cold
41,M,flu
41,F,cold
51,M,angina
51,F,flu
61,M,cold
61,F,angina
EOF
SUBMIT="$(curl -fsS -X POST --data-binary @"$TMP/crash.csv" \
    "$BASE/v1/jobs?algo=tp%2B&l=2&qi=Age,Gender&sa=Disease")"
CRASH_ID="$(printf '%s' "$SUBMIT" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
if [ -z "$CRASH_ID" ]; then
    echo "smoke: no job id in crash-leg response: $SUBMIT" >&2
    exit 1
fi
kill -9 "$LDIVD_PID"
wait "$LDIVD_PID" 2>/dev/null || true
unset LDIVD_PID

start_ldivd
i=0
while :; do
    STATUS_JSON="$(curl -fsS "$BASE/v1/jobs/$CRASH_ID")" || {
        echo "smoke: acknowledged job $CRASH_ID vanished after the crash" >&2
        exit 1
    }
    case "$STATUS_JSON" in
    *'"status":"done"'*) break ;;
    *'"status":"failed"'* | *'"status":"quarantined"'*)
        echo "smoke: job $CRASH_ID did not recover: $STATUS_JSON" >&2
        exit 1
        ;;
    esac
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "smoke: job $CRASH_ID never finished after restart: $STATUS_JSON" >&2
        exit 1
    fi
    sleep 0.2
done
CRASH_RESULT="$(curl -fsS "$BASE/v1/jobs/$CRASH_ID/result")"
case "$CRASH_RESULT" in
Age,Gender,Disease*) : ;;
*)
    echo "smoke: unexpected recovered result header: $CRASH_RESULT" >&2
    exit 1
    ;;
esac
# The pre-crash job must also survive, byte-identical.
RESULT2="$(curl -fsS "$BASE/v1/jobs/$JOB_ID/result")"
if [ "$RESULT2" != "$RESULT" ]; then
    echo "smoke: the pre-crash job's result changed across the restart" >&2
    exit 1
fi
METRICS="$(curl -fsS "$BASE/metrics")"
printf '%s\n' "$METRICS" | grep -q '^ldivd_jobs_recovered_total [1-9]' || {
    echo "smoke: metrics do not report recovered jobs after the crash" >&2
    printf '%s\n' "$METRICS" | grep '^ldivd_jobs' >&2 || true
    exit 1
}

echo "smoke: graceful shutdown"
kill -TERM "$LDIVD_PID"
wait "$LDIVD_PID" || {
    echo "smoke: ldivd exited non-zero" >&2
    cat "$TMP/ldivd.log" >&2
    exit 1
}
unset LDIVD_PID

echo "smoke: OK"
