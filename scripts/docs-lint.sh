#!/bin/sh
# docs-lint.sh fails if docs/ARCHITECTURE.md or examples/README.md reference a
# package directory (internal/..., cmd/..., examples/...) that no longer
# exists, so the documentation cannot silently drift from the tree. CI runs
# this on every push.
set -eu

cd "$(dirname "$0")/.."

fail=0
for f in docs/ARCHITECTURE.md examples/README.md; do
    if [ ! -f "$f" ]; then
        echo "docs-lint: $f is missing" >&2
        fail=1
        continue
    fi
    # `|| true`: a doc with no package references is fine (grep exits 1).
    refs="$(grep -ohE '\b(internal|cmd|examples)/[a-z][a-z0-9_]*' "$f" | sort -u || true)"
    for ref in $refs; do
        if [ ! -d "$ref" ]; then
            echo "docs-lint: $f references $ref, which does not exist" >&2
            fail=1
        fi
    done
done

# Every analyzer the architecture guide documents must exist as a source file
# in internal/lint: the "Static analysis" section lists them as table rows of
# the form "| `name` | ...", and ldivlint's analyzers live one per file as
# internal/lint/<name>.go, so the doc cannot advertise an analyzer the suite
# no longer ships.
if [ -f docs/ARCHITECTURE.md ]; then
    analyzers="$(sed -n '/^## Static analysis/,/^## [^S]/p' docs/ARCHITECTURE.md \
        | grep -oE '^\| `[a-z]+`' | tr -d '|` ' || true)"
    if [ -z "$analyzers" ]; then
        echo "docs-lint: docs/ARCHITECTURE.md has no analyzer table under '## Static analysis'" >&2
        fail=1
    fi
    for a in $analyzers; do
        if [ ! -f "internal/lint/$a.go" ]; then
            echo "docs-lint: ARCHITECTURE.md lists analyzer $a but internal/lint/$a.go does not exist" >&2
            fail=1
        fi
    done
fi

if [ "$fail" -eq 0 ]; then
    echo "docs-lint: OK"
fi
exit "$fail"
