#!/bin/sh
# docs-lint.sh fails if docs/ARCHITECTURE.md or examples/README.md reference a
# package directory (internal/..., cmd/..., examples/...) that no longer
# exists, so the documentation cannot silently drift from the tree. CI runs
# this on every push.
set -eu

cd "$(dirname "$0")/.."

fail=0
for f in docs/ARCHITECTURE.md examples/README.md; do
    if [ ! -f "$f" ]; then
        echo "docs-lint: $f is missing" >&2
        fail=1
        continue
    fi
    # `|| true`: a doc with no package references is fine (grep exits 1).
    refs="$(grep -ohE '\b(internal|cmd|examples)/[a-z][a-z0-9_]*' "$f" | sort -u || true)"
    for ref in $refs; do
        if [ ! -d "$ref" ]; then
            echo "docs-lint: $f references $ref, which does not exist" >&2
            fail=1
        fi
    done
done

# Every analyzer the architecture guide documents must exist as a source file
# in internal/lint: the "Static analysis" section lists them as table rows of
# the form "| `name` | ...", and ldivlint's analyzers live one per file as
# internal/lint/<name>.go, so the doc cannot advertise an analyzer the suite
# no longer ships.
if [ -f docs/ARCHITECTURE.md ]; then
    analyzers="$(sed -n '/^## Static analysis/,/^## [^S]/p' docs/ARCHITECTURE.md \
        | grep -oE '^\| `[a-z]+`' | tr -d '|` ' || true)"
    if [ -z "$analyzers" ]; then
        echo "docs-lint: docs/ARCHITECTURE.md has no analyzer table under '## Static analysis'" >&2
        fail=1
    fi
    for a in $analyzers; do
        if [ ! -f "internal/lint/$a.go" ]; then
            echo "docs-lint: ARCHITECTURE.md lists analyzer $a but internal/lint/$a.go does not exist" >&2
            fail=1
        fi
    done
fi

# The README's dataset catalog must match the scenario corpus exactly: the
# "## Datasets" section lists families as table rows "| `name` | ...", and
# every family is registered with a `Name: "..."` literal in
# internal/dataset/corpus.go (the only file defining them, by convention
# stated in its header). Both a documented-but-unregistered family and a
# registered-but-undocumented one fail.
if [ -f README.md ]; then
    doc_fams="$(sed -n '/^## Datasets/,/^## [^D]/p' README.md \
        | grep -oE '^\| `[a-z0-9-]+`' | tr -d '|` ' | sort || true)"
    reg_fams="$(grep -oE 'Name:[[:space:]]*"[a-z0-9-]+"' internal/dataset/corpus.go \
        | sed 's/.*"\([a-z0-9-]*\)"/\1/' | sort || true)"
    if [ -z "$doc_fams" ]; then
        echo "docs-lint: README.md has no family table under '## Datasets'" >&2
        fail=1
    elif [ -z "$reg_fams" ]; then
        echo "docs-lint: no Name: literals found in internal/dataset/corpus.go" >&2
        fail=1
    elif [ "$doc_fams" != "$reg_fams" ]; then
        echo "docs-lint: README '## Datasets' table disagrees with internal/dataset/corpus.go:" >&2
        echo "  documented: $(echo $doc_fams)" >&2
        echo "  registered: $(echo $reg_fams)" >&2
        fail=1
    fi
fi

if [ "$fail" -eq 0 ]; then
    echo "docs-lint: OK"
fi
exit "$fail"
