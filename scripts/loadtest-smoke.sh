#!/bin/sh
# loadtest-smoke.sh is the CI load-test gate. It runs one named scenario of
# cmd/ldivload (LOADTEST_SCENARIO, default smoke) against an in-process ldivd
# for LOADTEST_DURATION (default 10s), writing bench/BENCH_<scenario>.json,
# and then proves three things:
#
#   1. the run itself was clean — ldivload exits nonzero on lost jobs, audit
#      violations, or oracle mismatches, so thousands of concurrent round
#      trips with sampled byte-equivalence checks ride along for free;
#   2. the run is within BENCH_MAX_REGRESS percent (default 300 — CI runners
#      are not the baseline machine) of the checked-in seed baseline in
#      bench/baselines/, which still catches order-of-magnitude collapses;
#   3. the gate actually gates — a 4x synthetic regression injected with
#      -degrade must make bench-compare fail. A gate that passes everything
#      is worse than no gate.
#
# `make loadtest-smoke` runs the smoke scenario; `make loadtest-sustained`
# runs the sustained one against its own baseline.
#
# Requires: go. Produces: bench/BENCH_<scenario>.json (a CI artifact).
set -eu

SCENARIO="${LOADTEST_SCENARIO:-smoke}"
DURATION="${LOADTEST_DURATION:-10s}"
MAX_REGRESS="${BENCH_MAX_REGRESS:-300}"
OUT="${LOADTEST_OUT:-bench}"
BASELINE="bench/baselines/BENCH_$SCENARIO.json"

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT INT TERM

echo "loadtest-smoke: running the $SCENARIO scenario for $DURATION"
go run ./cmd/ldivload -scenario "$SCENARIO" -duration "$DURATION" -out "$OUT"
BENCH="$OUT/BENCH_$SCENARIO.json"

echo "loadtest-smoke: self-comparison (sanity: a run never regresses against itself)"
./scripts/bench-compare.sh "$BENCH" "$BENCH"

if [ -f "$BASELINE" ]; then
    echo "loadtest-smoke: comparing against $BASELINE (tolerance ${MAX_REGRESS}%)"
    ./scripts/bench-compare.sh "$BASELINE" "$BENCH" "$MAX_REGRESS"
else
    echo "loadtest-smoke: no baseline at $BASELINE, skipping the trajectory gate" >&2
fi

echo "loadtest-smoke: proving the gate gates (4x synthetic regression must fail)"
go run ./cmd/ldivload -degrade "$BENCH" -factor 4 -o "$TMP/degraded.json"
if ./scripts/bench-compare.sh "$BENCH" "$TMP/degraded.json" >"$TMP/gate.log" 2>&1; then
    echo "loadtest-smoke: FAIL — bench-compare passed a 4x synthetic regression" >&2
    cat "$TMP/gate.log" >&2
    exit 1
fi

echo "loadtest-smoke: ok ($BENCH)"
