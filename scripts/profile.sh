#!/bin/sh
# profile.sh captures the profiling evidence behind EXPERIMENTS.md's hot-path
# numbers: a pprof CPU profile and an allocation profile of the SAL-4 timing
# workload (ldivbench -fig 4, "Computation time vs. l"), then validates both
# with `go tool pprof -top` so a broken profile cannot be mistaken for a slow
# one. Knobs (environment):
#
#   PROFILE_FIG   figure to profile (default 4, the SAL-4/OCC-4 timing run)
#   PROFILE_ROWS  base-table cardinality (default 0 = ldivbench's 60000);
#                 CI runs this in smoke mode with a tiny value so the pprof
#                 plumbing cannot rot
#   PROFILE_OUT   output directory (default bench/profiles, gitignored)
#
# Requires: go. Produces: $PROFILE_OUT/cpu.pprof and $PROFILE_OUT/mem.pprof.
# Inspect interactively with `go tool pprof -http=:8081 bench/profiles/cpu.pprof`.
set -eu

FIG="${PROFILE_FIG:-4}"
ROWS="${PROFILE_ROWS:-0}"
OUT="${PROFILE_OUT:-bench/profiles}"

mkdir -p "$OUT"
CPU="$OUT/cpu.pprof"
MEM="$OUT/mem.pprof"

echo "profile: running ldivbench -fig $FIG -rows $ROWS (0 rows means the default scale)"
go run ./cmd/ldivbench -fig "$FIG" -rows "$ROWS" -cpuprofile "$CPU" -memprofile "$MEM" >/dev/null

echo "profile: top CPU consumers ($CPU)"
go tool pprof -top -nodecount 15 "$CPU"

echo
echo "profile: top allocators by space ($MEM)"
go tool pprof -top -nodecount 10 -sample_index=alloc_space "$MEM"

echo
echo "profile: wrote $CPU and $MEM"
