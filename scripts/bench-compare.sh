#!/bin/sh
# bench-compare.sh gates perf regressions between two BENCH_*.json files
# produced by cmd/ldivload: it exits nonzero when the new run's p99 latency or
# throughput regressed past the tolerance, or when the new run had any
# correctness failure (lost jobs, audit violations, oracle mismatches — those
# are gated unconditionally, no tolerance applies).
#
# Usage: scripts/bench-compare.sh BASELINE.json NEW.json [MAX_REGRESS_PCT]
#
# MAX_REGRESS_PCT defaults to 25 — appropriate when both files came from the
# same machine. Comparing across machines (e.g. a checked-in baseline against
# a CI runner) needs a much looser bound; scripts/loadtest-smoke.sh uses
# BENCH_MAX_REGRESS for that.
set -eu

if [ $# -lt 2 ]; then
    echo "usage: $0 BASELINE.json NEW.json [MAX_REGRESS_PCT]" >&2
    exit 2
fi
BASELINE="$1"
NEW="$2"
TOLERANCE="${3:-25}"

exec go run ./cmd/ldivload \
    -compare "$BASELINE" -against "$NEW" \
    -max-p99-regress "$TOLERANCE" -max-tput-regress "$TOLERANCE"
