#!/bin/sh
# coverage.sh is the CI coverage gate: it runs the internal/... test suites
# with a merged coverage profile, prints the per-package coverage table (the
# numbers EXPERIMENTS.md records), and fails if the total statement coverage
# drops below the threshold (default 85%, override with COVER_THRESHOLD).
set -eu

cd "$(dirname "$0")/.."

threshold="${COVER_THRESHOLD:-85}"
profile="${COVER_PROFILE:-coverage.out}"

out="$(mktemp)"
trap 'rm -f "$out"' EXIT

# Run the suites to a file first so go test's own exit status gates the run —
# a red suite must fail here, not be masked by the formatting pipeline.
if ! go test -count=1 -coverprofile "$profile" ./internal/... >"$out" 2>&1; then
    cat "$out" >&2
    echo "coverage: FAIL — the test suite itself failed" >&2
    exit 1
fi

echo "coverage: per-package statement coverage (internal/...)"
awk '
    /coverage:/ { printf "  %-28s %s\n", $2, $5 }
    /\[no test files\]/ { printf "  %-28s (no tests)\n", $2 }
' "$out"

total="$(go tool cover -func="$profile" | awk '/^total:/ { sub(/%/, "", $3); print $3 }')"
echo "coverage: total ${total}% (gate: ${threshold}%)"

if awk -v t="$total" -v th="$threshold" 'BEGIN { exit !(t + 0 < th + 0) }'; then
    echo "coverage: FAIL — total ${total}% is below the ${threshold}% gate" >&2
    exit 1
fi
echo "coverage: OK"
