module ldiv

go 1.24
